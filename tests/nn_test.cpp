// Tests for the NN engine: tensor algebra, autograd gradient checks against
// central finite differences for every op, dataset generators, and a
// training smoke test.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/autograd.hpp"
#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "nn/transformer.hpp"

namespace nova::nn {
namespace {

TEST(Tensor, MatmulMatchesHandComputation) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Tensor, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(1);
  const Tensor a = Tensor::randn({4, 3}, rng, 1.0);
  const Tensor b = Tensor::randn({4, 5}, rng, 1.0);
  const Tensor expect = matmul(transpose2d(a), b);
  const Tensor got = matmul_tn(a, b);
  for (std::size_t i = 0; i < expect.numel(); ++i) {
    EXPECT_NEAR(got.flat()[i], expect.flat()[i], 1e-4);
  }
  const Tensor c = Tensor::randn({5, 3}, rng, 1.0);
  const Tensor a2 = Tensor::randn({4, 3}, rng, 1.0);
  const Tensor expect2 = matmul(a2, transpose2d(c));
  const Tensor got2 = matmul_nt(a2, c);
  for (std::size_t i = 0; i < expect2.numel(); ++i) {
    EXPECT_NEAR(got2.flat()[i], expect2.flat()[i], 1e-4);
  }
}

TEST(Tensor, ReshapePreservesData) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b = a.reshaped({3, 2});
  EXPECT_FLOAT_EQ(b.at(2, 1), 6.0f);
}

// ---------------------------------------------------------------------------
// Gradient checking machinery: builds loss = graph(x) . w for a fixed random
// projection w, compares autograd input gradients against central finite
// differences.
// ---------------------------------------------------------------------------

using GraphFn = std::function<Var(const Var&)>;

void check_input_gradient(const Tensor& x0, const GraphFn& graph,
                          double h = 1e-3, double tol = 5e-3) {
  Rng rng(99);
  // Forward once to size the projection vector.
  const Var probe = graph(make_input(x0));
  const int n = static_cast<int>(probe->value.numel());
  const Tensor w = Tensor::randn({n, 1}, rng, 1.0);

  auto loss_value = [&](const Tensor& x) -> double {
    const Var out = graph(make_input(x));
    const Tensor flat = out->value.reshaped({1, n});
    return matmul(flat, w).flat()[0];
  };

  // Autograd gradient.
  const Var x_var = make_param(x0);
  const Var out = graph(x_var);
  const Var flat = reshape_op(out, {1, n});
  const Var loss = matmul_op(flat, make_input(w));
  backward(loss);

  for (std::size_t i = 0; i < x0.numel(); ++i) {
    Tensor xp = x0, xm = x0;
    xp.flat()[i] += static_cast<float>(h);
    xm.flat()[i] -= static_cast<float>(h);
    const double numeric = (loss_value(xp) - loss_value(xm)) / (2.0 * h);
    const double analytic = x_var->grad.flat()[i];
    EXPECT_NEAR(analytic, numeric, tol + 0.02 * std::abs(numeric))
        << "element " << i;
  }
}

TEST(Autograd, ReluGradient) {
  Rng rng(2);
  check_input_gradient(Tensor::randn({3, 4}, rng, 1.0),
                       [](const Var& x) { return relu_op(x); });
}

TEST(Autograd, GeluGradient) {
  Rng rng(3);
  check_input_gradient(Tensor::randn({3, 4}, rng, 1.0), [](const Var& x) {
    return gelu_op(x, Nonlinearity::exact());
  });
}

TEST(Autograd, MatmulGradient) {
  Rng rng(4);
  const Tensor b = Tensor::randn({4, 2}, rng, 1.0);
  check_input_gradient(Tensor::randn({3, 4}, rng, 1.0),
                       [b](const Var& x) {
                         return matmul_op(x, make_input(b));
                       });
}

TEST(Autograd, MatmulNtGradient) {
  Rng rng(5);
  const Tensor b = Tensor::randn({5, 4}, rng, 1.0);
  check_input_gradient(Tensor::randn({3, 4}, rng, 1.0),
                       [b](const Var& x) {
                         return matmul_nt_op(x, make_input(b));
                       });
}

TEST(Autograd, SoftmaxRowsGradient) {
  Rng rng(6);
  check_input_gradient(Tensor::randn({2, 5}, rng, 1.0), [](const Var& x) {
    return softmax_rows_op(x, Nonlinearity::exact());
  });
}

TEST(Autograd, LayerNormGradient) {
  Rng rng(7);
  const Tensor gain = Tensor::randn({6}, rng, 0.3);
  const Tensor bias = Tensor::randn({6}, rng, 0.3);
  check_input_gradient(
      Tensor::randn({3, 6}, rng, 1.0),
      [gain, bias](const Var& x) {
        return layernorm_rows_op(x, make_input(gain), make_input(bias));
      },
      1e-3, 1e-2);
}

TEST(Autograd, AddRowvecGradient) {
  Rng rng(8);
  const Tensor b = Tensor::randn({4}, rng, 1.0);
  check_input_gradient(Tensor::randn({3, 4}, rng, 1.0),
                       [b](const Var& x) {
                         return add_rowvec_op(x, make_input(b));
                       });
}

TEST(Autograd, SliceConcatGradient) {
  Rng rng(9);
  check_input_gradient(Tensor::randn({3, 6}, rng, 1.0), [](const Var& x) {
    const Var left = slice_cols_op(x, 0, 3);
    const Var right = slice_cols_op(x, 3, 6);
    return concat_cols_op({right, left});
  });
}

TEST(Autograd, MeanRowsGradient) {
  Rng rng(10);
  check_input_gradient(Tensor::randn({4, 3}, rng, 1.0),
                       [](const Var& x) { return mean_rows_op(x); });
}

TEST(Autograd, Conv2dGradient) {
  Rng rng(11);
  const Conv2dSpec spec{2, 3, 3, 1, 1};
  const Tensor w = Tensor::randn({3, 2 * 9}, rng, 0.5);
  const Tensor b = Tensor::randn({3}, rng, 0.5);
  check_input_gradient(Tensor::randn({2, 5, 5}, rng, 1.0),
                       [w, b, spec](const Var& x) {
                         return conv2d_op(x, make_input(w), make_input(b),
                                          spec);
                       });
}

TEST(Autograd, Conv2dWeightGradient) {
  Rng rng(12);
  const Conv2dSpec spec{1, 2, 3, 1, 1};
  const Tensor x = Tensor::randn({1, 4, 4}, rng, 1.0);
  const Tensor b = Tensor::randn({2}, rng, 0.5);
  check_input_gradient(Tensor::randn({2, 9}, rng, 0.5),
                       [x, b, spec](const Var& w) {
                         return conv2d_op(make_input(x), w, make_input(b),
                                          spec);
                       });
}

TEST(Autograd, DepthwiseConvGradient) {
  Rng rng(13);
  const Tensor w = Tensor::randn({2, 9}, rng, 0.5);
  const Tensor b = Tensor::randn({2}, rng, 0.5);
  check_input_gradient(Tensor::randn({2, 5, 5}, rng, 1.0),
                       [w, b](const Var& x) {
                         return depthwise_conv2d_op(x, make_input(w),
                                                    make_input(b), 3, 1, 1);
                       });
}

TEST(Autograd, MaxpoolGradient) {
  Rng rng(14);
  // Well-separated values avoid argmax ties that break finite differences.
  Tensor x({1, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.flat()[i] = static_cast<float>(i % 7) + 0.1f * static_cast<float>(i);
  }
  check_input_gradient(x, [](const Var& v) { return maxpool2_op(v); });
}

TEST(Autograd, EmbeddingGradientFlowsToTable) {
  Rng rng(15);
  const std::vector<int> ids{1, 0, 2, 1};
  check_input_gradient(Tensor::randn({4, 3}, rng, 1.0),
                       [ids](const Var& table) {
                         return embedding_op(table, ids);
                       });
}

TEST(Autograd, CrossEntropyGradient) {
  Rng rng(16);
  const Tensor logits0 = Tensor::randn({2, 4}, rng, 1.0);
  const std::vector<int> labels{1, 3};

  auto loss_value = [&](const Tensor& logits) {
    const Var l = cross_entropy_op(make_input(logits), labels);
    return static_cast<double>(l->value.flat()[0]);
  };
  const Var x = make_param(logits0);
  const Var loss = cross_entropy_op(x, labels);
  backward(loss);
  const double h = 1e-3;
  for (std::size_t i = 0; i < logits0.numel(); ++i) {
    Tensor lp = logits0, lm = logits0;
    lp.flat()[i] += static_cast<float>(h);
    lm.flat()[i] -= static_cast<float>(h);
    const double numeric = (loss_value(lp) - loss_value(lm)) / (2.0 * h);
    EXPECT_NEAR(x->grad.flat()[i], numeric, 5e-3);
  }
}

TEST(Autograd, GradsAccumulateAcrossSharedSubgraphs) {
  // y = x + x must give dL/dx = 2.
  Tensor x0({1, 1}, {3.0f});
  const Var x = make_param(x0);
  const Var y = add_op(x, x);
  backward(y);
  EXPECT_FLOAT_EQ(x->grad.flat()[0], 2.0f);
}

TEST(Autograd, TransformerEndToEndGradientIsFinite) {
  Rng rng(17);
  TransformerConfig cfg;
  cfg.vocab = 8;
  cfg.max_len = 6;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.ffn_dim = 16;
  cfg.layers = 1;
  cfg.classes = 2;
  TransformerClassifier model(cfg, rng);
  const Var loss =
      cross_entropy_op(model.forward({1, 2, 3, 4}, Nonlinearity::exact()),
                       {1});
  backward(loss);
  double grad_norm = 0.0;
  for (const auto& p : model.params().all()) {
    p->ensure_grad();
    for (const float g : p->grad.flat()) {
      EXPECT_TRUE(std::isfinite(g));
      grad_norm += static_cast<double>(g) * g;
    }
  }
  EXPECT_GT(grad_norm, 0.0);
}

// ---------------------------------------------------------------------------
// Datasets
// ---------------------------------------------------------------------------

TEST(Datasets, DigitsAreDeterministicAndShaped) {
  const auto a = make_synthetic_digits(20, 10, 42);
  const auto b = make_synthetic_digits(20, 10, 42);
  ASSERT_EQ(a.train.size(), 20u);
  ASSERT_EQ(a.test.size(), 10u);
  EXPECT_EQ(a.classes, 10);
  EXPECT_EQ(a.train[0].image.shape(), (std::vector<int>{1, 12, 12}));
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].label, b.train[i].label);
    for (std::size_t j = 0; j < a.train[i].image.numel(); ++j) {
      EXPECT_FLOAT_EQ(a.train[i].image.flat()[j],
                      b.train[i].image.flat()[j]);
    }
  }
}

TEST(Datasets, TexturesCoverAllClasses) {
  const auto ds = make_texture_patches(40, 20, 10, 7);
  std::vector<int> counts(10, 0);
  for (const auto& s : ds.train) ++counts[static_cast<std::size_t>(s.label)];
  for (const int c : counts) EXPECT_GT(c, 0);
  EXPECT_EQ(ds.channels, 3);
}

TEST(Datasets, SequencesHaveBothLabelsAndValidTokens) {
  const auto ds = make_token_sequences(100, 20, 16, 5);
  int pos = 0, neg = 0;
  for (const auto& s : ds.train) {
    (s.label == 1 ? pos : neg) += 1;
    for (const int t : s.tokens) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, ds.vocab);
    }
  }
  EXPECT_GT(pos, 10);
  EXPECT_GT(neg, 10);
}

// ---------------------------------------------------------------------------
// Training smoke tests
// ---------------------------------------------------------------------------

TrainOptions fast_training() {
  TrainOptions opt;
  opt.epochs = 8;
  opt.batch = 8;
  opt.learning_rate = 3e-3;
  return opt;
}

TEST(Training, MlpLearnsSyntheticDigits) {
  Rng rng(21);
  const auto ds = make_synthetic_digits(1000, 200, 11);
  auto model = make_mlp_model(1, 12, 12, 10, rng);
  const double loss = train_image_model(*model, ds.train, fast_training());
  EXPECT_LT(loss, 0.5);
  const double acc =
      eval_image_accuracy(*model, ds.test, Nonlinearity::exact());
  EXPECT_GT(acc, 85.0);
}

TEST(Training, ApproxSoftmaxDoesNotCollapseAccuracy) {
  Rng rng(22);
  const auto ds = make_synthetic_digits(1000, 200, 11);
  auto model = make_mlp_model(1, 12, 12, 10, rng);
  train_image_model(*model, ds.train, fast_training());
  const double exact =
      eval_image_accuracy(*model, ds.test, Nonlinearity::exact());
  const double approx =
      eval_image_accuracy(*model, ds.test, Nonlinearity::pwl(16));
  EXPECT_NEAR(approx, exact, 2.0);  // Table I: negligible accuracy loss
}

}  // namespace
}  // namespace nova::nn
