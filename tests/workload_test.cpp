// Tests for the transformer workload models: configuration sanity, GEMM
// shape accounting, and non-linear operation counting.
#include <gtest/gtest.h>

#include "workload/bert.hpp"

namespace nova::workload {
namespace {

TEST(Bert, PaperBenchmarkZooHasFiveModels) {
  const auto zoo = paper_benchmarks(1024);
  ASSERT_EQ(zoo.size(), 5u);
  EXPECT_EQ(zoo[0].name, "MobileBERT-base");
  EXPECT_EQ(zoo[4].name, "BERT-mini");
  for (const auto& cfg : zoo) EXPECT_EQ(cfg.seq_len, 1024);
}

TEST(Bert, ConfigsMatchPublishedShapes) {
  const auto tiny = bert_tiny(128);
  EXPECT_EQ(tiny.layers, 2);
  EXPECT_EQ(tiny.hidden, 128);
  EXPECT_EQ(tiny.heads, 2);
  EXPECT_EQ(tiny.ffn, 512);
  const auto roberta = roberta_base(128);
  EXPECT_EQ(roberta.layers, 12);
  EXPECT_EQ(roberta.hidden, 768);
  EXPECT_EQ(roberta.heads, 12);
  EXPECT_EQ(roberta.ffn, 3072);
  const auto mb = mobilebert_base(128);
  EXPECT_EQ(mb.layers, 24);
  EXPECT_GT(mb.bottleneck, 0);
  EXPECT_EQ(mb.ffn_stacks, 4);
}

TEST(Workload, BertTinyMacCountIsExact) {
  // Hand count for L=2, H=128, A=2, FF=512, S=16:
  //  qkv: 3*2 * 16*128*128 = 1,572,864
  //  proj: 2 * 16*128*128 = 524,288
  //  scores: 2*2 * 16*64*16 = 65,536
  //  context: 2*2 * 16*16*64 = 65,536
  //  ffn: 2 * (16*128*512 + 16*512*128) = 4,194,304
  const auto wl = model_workload(bert_tiny(16));
  EXPECT_EQ(wl.total_macs(), 1572864 + 524288 + 65536 + 65536 + 4194304);
}

TEST(Workload, SoftmaxRowAccountingFollowsHeadsAndLayers) {
  const auto wl = model_workload(bert_mini(64));
  // layers * heads * seq rows of length seq.
  EXPECT_EQ(wl.nonlinear.softmax_rows, 4 * 4 * 64);
  EXPECT_EQ(wl.nonlinear.softmax_row_len, 64);
}

TEST(Workload, GeluCountsScaleWithFfnStacks) {
  const auto base = model_workload(mobilebert_base(32));
  // 24 layers * 4 stacks * 32 * 512.
  EXPECT_EQ(base.nonlinear.gelu_elements, 24L * 4 * 32 * 512);
}

TEST(Workload, ApproxOpsFormula) {
  NonLinearProfile profile;
  profile.softmax_rows = 10;
  profile.softmax_row_len = 7;
  profile.gelu_elements = 100;
  profile.layernorm_rsqrt_ops = 5;
  // 10 * (2*7 + 1) + 100 + 5.
  EXPECT_EQ(profile.total_approx_ops(), 255);
}

TEST(Workload, MobileBertHasBottleneckGemms) {
  const auto wl = model_workload(mobilebert_base(128));
  bool found_in = false, found_out = false;
  for (const auto& g : wl.gemms) {
    if (g.label == "bottleneck-in") found_in = true;
    if (g.label == "bottleneck-out") found_out = true;
  }
  EXPECT_TRUE(found_in);
  EXPECT_TRUE(found_out);
  const auto std_wl = model_workload(bert_tiny(128));
  for (const auto& g : std_wl.gemms) {
    EXPECT_NE(g.label, "bottleneck-in");
  }
}

TEST(Workload, LongerSequencesGrowSoftmaxQuadratically) {
  const auto short_wl = model_workload(bert_tiny(128));
  const auto long_wl = model_workload(bert_tiny(256));
  const auto softmax_ops = [](const ModelWorkload& wl) {
    return wl.nonlinear.softmax_rows * (2 * wl.nonlinear.softmax_row_len + 1);
  };
  const double ratio = static_cast<double>(softmax_ops(long_wl)) /
                       static_cast<double>(softmax_ops(short_wl));
  EXPECT_NEAR(ratio, 4.0, 0.1);
}

TEST(Workload, RobertaDominatesBertTinyInMacs) {
  EXPECT_GT(model_workload(roberta_base(1024)).total_macs(),
            20 * model_workload(bert_tiny(1024)).total_macs());
}

TEST(Bert, ByNameResolvesEveryCatalogEntryAndAlias) {
  for (const auto& entry : benchmark_catalog()) {
    const auto config = by_name(entry.name, 64);
    ASSERT_TRUE(config.has_value()) << entry.name;
    EXPECT_EQ(config->seq_len, 64);
    EXPECT_EQ(config->name, entry.make(64).name);
    if (entry.alias != nullptr) {
      const auto aliased = by_name(entry.alias, 64);
      ASSERT_TRUE(aliased.has_value()) << entry.alias;
      EXPECT_EQ(aliased->name, config->name);
    }
  }
  EXPECT_FALSE(by_name("no-such-model", 64).has_value());
  EXPECT_FALSE(by_name("", 64).has_value());
}

}  // namespace
}  // namespace nova::workload
