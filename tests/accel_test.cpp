// Tests for the accelerator substrates: the SCALE-Sim-like systolic cycle
// model (validated against hand-computed fold arithmetic) and the
// end-to-end inference energy evaluation behind Fig 8.
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "accel/systolic.hpp"

namespace nova::accel {
namespace {

TEST(Systolic, WeightStationarySingleFoldHandCount) {
  // 8x8 array, GEMM m=4, k=8, n=8: one fold, cycles = 8 + 4 + (8+8-2) = 26.
  const SystolicConfig cfg{8, 8, Dataflow::kWeightStationary};
  EXPECT_EQ(gemm_cycles(cfg, 4, 8, 8), 26u);
}

TEST(Systolic, WeightStationaryFoldCount) {
  const SystolicConfig cfg{128, 128, Dataflow::kWeightStationary};
  // k=256 -> 2 row-folds; n=384 -> 3 col-folds.
  EXPECT_EQ(gemm_folds(cfg, 64, 256, 384), 6);
}

TEST(Systolic, OutputStationarySingleFoldHandCount) {
  // 8x8 array, m=8, k=16, n=8: one fold, cycles = 16 + (8+8-2) + 8 = 38.
  const SystolicConfig cfg{8, 8, Dataflow::kOutputStationary};
  EXPECT_EQ(gemm_cycles(cfg, 8, 16, 8), 38u);
}

TEST(Systolic, UtilizationPeaksForArrayAlignedGemms) {
  const SystolicConfig cfg{128, 128, Dataflow::kWeightStationary};
  const double aligned = gemm_utilization(cfg, 1024, 128, 128);
  const double ragged = gemm_utilization(cfg, 1024, 129, 129);
  EXPECT_GT(aligned, ragged);
  EXPECT_GT(aligned, 0.5);
}

TEST(Systolic, CyclesMonotoneInEveryDimension) {
  const SystolicConfig cfg{64, 64, Dataflow::kWeightStationary};
  EXPECT_LE(gemm_cycles(cfg, 64, 64, 64), gemm_cycles(cfg, 128, 64, 64));
  EXPECT_LE(gemm_cycles(cfg, 64, 64, 64), gemm_cycles(cfg, 64, 128, 64));
  EXPECT_LE(gemm_cycles(cfg, 64, 64, 64), gemm_cycles(cfg, 64, 64, 128));
}

TEST(Accelerator, HostCatalogRoundTripsThroughResolver) {
  ASSERT_EQ(host_catalog().size(), 4u);
  for (const auto& entry : host_catalog()) {
    const auto kind = host_by_name(entry.name);
    ASSERT_TRUE(kind.has_value()) << entry.name;
    EXPECT_EQ(*kind, entry.kind);
    EXPECT_FALSE(make_accelerator(*kind).name.empty());
  }
  EXPECT_FALSE(host_by_name("cpu").has_value());
  EXPECT_FALSE(host_by_name("").has_value());
}

TEST(Accelerator, PaperConfigsInstantiate) {
  const auto tpu4 = make_accelerator(hw::AcceleratorKind::kTpuV4);
  EXPECT_EQ(tpu4.matrix_units, 8);
  EXPECT_EQ(tpu4.systolic.rows, 128);
  const auto react = make_accelerator(hw::AcceleratorKind::kReact);
  EXPECT_EQ(react.matrix_units, 10);
  EXPECT_DOUBLE_EQ(react.freq_mhz, 240.0);
}

TEST(Accelerator, MoreMatrixUnitsNeverSlower) {
  const auto v3 = make_accelerator(hw::AcceleratorKind::kTpuV3);
  const auto v4 = make_accelerator(hw::AcceleratorKind::kTpuV4);
  const auto wl = workload::model_workload(workload::roberta_base(1024));
  EXPECT_LE(inference_cycles(v4, wl), inference_cycles(v3, wl));
}

TEST(Accelerator, NovaApproxEnergyBelowLutBaselines) {
  // Fig 8's core comparison on the TPU-v4 configuration.
  const auto accel = make_accelerator(hw::AcceleratorKind::kTpuV4);
  const auto wl = workload::model_workload(workload::bert_mini(1024));
  const auto nova = evaluate_inference(
      accel, wl, ApproximatorChoice{hw::UnitKind::kNovaNoc, 16});
  const auto pn = evaluate_inference(
      accel, wl, ApproximatorChoice{hw::UnitKind::kPerNeuronLut, 16});
  const auto pc = evaluate_inference(
      accel, wl, ApproximatorChoice{hw::UnitKind::kPerCoreLut, 16});
  EXPECT_LT(nova.approx_energy_mj, pn.approx_energy_mj);
  EXPECT_LT(nova.approx_energy_mj, pc.approx_energy_mj);
  // Runtime identical across approximators (same throughput/latency).
  EXPECT_DOUBLE_EQ(nova.runtime_ms, pn.runtime_ms);
}

TEST(Accelerator, NovaOverheadIsSmallFractionOfInferenceEnergy) {
  // Section V.F: "energy overhead of only 0.5%" for NOVA on TPU-v4.
  const auto accel = make_accelerator(hw::AcceleratorKind::kTpuV4);
  for (const auto& cfg : workload::paper_benchmarks(1024)) {
    const auto wl = workload::model_workload(cfg);
    const auto nova = evaluate_inference(
        accel, wl, ApproximatorChoice{hw::UnitKind::kNovaNoc, 16});
    EXPECT_LT(nova.overhead_fraction(), 0.05) << cfg.name;
  }
}

TEST(Accelerator, ApproxOpsMatchWorkloadProfile) {
  const auto accel = make_accelerator(hw::AcceleratorKind::kTpuV3);
  const auto wl = workload::model_workload(workload::bert_tiny(128));
  const auto result = evaluate_inference(
      accel, wl, ApproximatorChoice{hw::UnitKind::kNovaNoc, 16});
  EXPECT_EQ(result.approx_ops,
            static_cast<std::uint64_t>(wl.nonlinear.total_approx_ops()));
}

TEST(Accelerator, ComputeDominatesApproxCycles) {
  // The vector units keep up with the fabric: non-linear work never becomes
  // the runtime bottleneck in the paper's configurations.
  for (const auto kind :
       {hw::AcceleratorKind::kTpuV3, hw::AcceleratorKind::kTpuV4}) {
    const auto accel = make_accelerator(kind);
    for (const auto& cfg : workload::paper_benchmarks(1024)) {
      const auto wl = workload::model_workload(cfg);
      const auto result = evaluate_inference(
          accel, wl, ApproximatorChoice{hw::UnitKind::kNovaNoc, 16});
      EXPECT_GE(result.compute_cycles, result.approx_cycles) << cfg.name;
    }
  }
}

}  // namespace
}  // namespace nova::accel
